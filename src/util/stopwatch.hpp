// Monotonic wall-clock stopwatch for benchmarks and rate measurements.
#pragma once

#include <chrono>
#include <cstdint>

namespace moir {

class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  Clock::time_point start_;
};

}  // namespace moir
