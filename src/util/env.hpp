// Environment-variable knobs shared by tests and benches.
//
// CI shards and local deep runs tune budgets and seeds without recompiling:
//   MOIR_SEED           base seed for every randomized component
//   MOIR_EXPLORE_SCALE  multiplier for exploration trial/run budgets
//   MOIR_BENCH_QUICK    benches divide op counts by 10 (see bench/common.hpp)
//   MOIR_BENCH_SMOKE    benches divide op counts by 100 (~100ms smoke runs)
//   MOIR_BENCH_JSON     path benches write their JSON report to
//   MOIR_STATS          runtime stats-counter toggle (default on; see
//                       src/stats/stats.hpp for the compile-time switch)
//   MOIR_TRACE          enables the stats event-trace ring buffers
#pragma once

#include <cstdint>
#include <cstdlib>

namespace moir {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  return (end == nullptr || *end != '\0') ? fallback
                                          : static_cast<std::uint64_t>(v);
}

// Boolean knob: unset/empty -> fallback; "0", "false", "off", "no" (any
// case) -> false; anything else -> true.
inline bool env_flag(const char* name, bool fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  auto matches = [s](const char* word) {
    const char* p = s;
    for (; *word != '\0'; ++p, ++word) {
      const char c = (*p >= 'A' && *p <= 'Z') ? static_cast<char>(*p + 32) : *p;
      if (c != *word) return false;
    }
    return *p == '\0';
  };
  return !(matches("0") || matches("false") || matches("off") || matches("no"));
}

// Base seed for randomized schedules / yield fuzzing; sweep in CI via
// MOIR_SEED to diversify coverage across runs.
inline std::uint64_t base_seed(std::uint64_t fallback = 0x9e3779b9u) {
  return env_u64("MOIR_SEED", fallback);
}

// Budget multiplier for the deep exploration shards: tier-1 runs keep the
// default (1), nightly/explore shards export MOIR_EXPLORE_SCALE=10 or more.
inline std::uint64_t explore_scale() { return env_u64("MOIR_EXPLORE_SCALE", 1); }

inline std::size_t scaled_budget(std::size_t base) {
  return static_cast<std::size_t>(base * explore_scale());
}

}  // namespace moir
