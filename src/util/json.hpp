// Minimal streaming JSON writer.
//
// The bench exporter and stats layer need machine-readable output, and the
// container has no JSON library — so this is a small hand-rolled writer:
// it tracks container nesting for comma placement, escapes strings, and
// maps non-finite doubles to null (JSON has no NaN/Inf). Output is compact
// single-line JSON; pretty-printing is the consumer's job
// (`python3 -m json.tool`).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace moir {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null();

  template <class T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  // Splice a pre-rendered JSON fragment (e.g. Histogram::to_json()) as one
  // value. The fragment is trusted to be valid JSON.
  JsonWriter& raw(std::string_view json);

  bool complete() const { return depth_.empty() && !out_.empty(); }
  const std::string& str() const { return out_; }

 private:
  void element();  // comma/first-element bookkeeping before a value
  void append_escaped(std::string_view s);

  std::string out_;
  std::vector<char> depth_;  // 'f' = container awaiting first element, 'n' = not
  bool pending_key_ = false;
};

}  // namespace moir
