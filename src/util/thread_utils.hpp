// Thread coordination helpers for tests and benchmarks.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace moir {

// Sense-reversing spin barrier. Spinning (with yield) rather than blocking
// keeps rendezvous latency low, which matters for measurement windows; on an
// oversubscribed machine the yield keeps it from burning a full quantum.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties)
      : parties_(parties), waiting_(0), sense_(false) {}

  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      waiting_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> waiting_;
  std::atomic<bool> sense_;
};

// Runs `body(thread_index)` on `n` threads, joining them all before
// returning. Exceptions in workers are not expected (workers are test/bench
// loops); a throwing body terminates, which is the desired loud failure.
inline void run_threads(std::size_t n,
                        const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads.emplace_back([&body, i] { body(i); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace moir
