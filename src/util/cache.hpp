// Cache-line geometry and false-sharing avoidance.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace moir {

// Fixed rather than std::hardware_destructive_interference_size: that
// constant can change with compiler flags, which would silently change
// struct layouts across TUs (gcc's -Winterference-size rationale). 64 is
// correct for every x86-64 and most AArch64 parts.
inline constexpr std::size_t kCacheLine = 64;

// Wraps T on its own cache line. Used for per-process announcement slots and
// per-thread statistics, where false sharing would otherwise distort both the
// benchmarks and the contention counters.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  template <typename... Args>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

}  // namespace moir
