#include "util/histogram.hpp"

#include <cstdio>

namespace moir {

void Histogram::merge(const Histogram& other) {
  for (unsigned b = 0; b <= kBuckets; ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  n_ += other.n_;
  if (other.max_ > max_) max_ = other.max_;
}

std::uint64_t Histogram::quantile(double q) const {
  if (n_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n_));
  std::uint64_t seen = 0;
  for (unsigned b = 0; b <= kBuckets; ++b) {
    seen += counts_[b];
    if (seen > target) {
      // A bucket's range can extend past the observed maximum; clamp so
      // quantiles are monotone and never exceed max().
      return bucket_upper(b) < max_ ? bucket_upper(b) : max_;
    }
  }
  return max_;
}

std::string Histogram::render(const std::string& unit) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "n=%llu mean=%.1f%s p50<=%llu p99<=%llu max=%llu%s\n",
                static_cast<unsigned long long>(n_), mean(), unit.c_str(),
                static_cast<unsigned long long>(quantile(0.50)),
                static_cast<unsigned long long>(quantile(0.99)),
                static_cast<unsigned long long>(max_), unit.c_str());
  out += line;
  for (unsigned b = 0; b <= kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    const double frac =
        static_cast<double>(counts_[b]) / static_cast<double>(n_);
    const int bars = static_cast<int>(frac * 50.0 + 0.5);
    std::snprintf(line, sizeof line, "  <=%-12llu %10llu %5.1f%% |%.*s\n",
                  static_cast<unsigned long long>(bucket_upper(b)),
                  static_cast<unsigned long long>(counts_[b]), frac * 100.0,
                  bars,
                  "##################################################");
    out += line;
  }
  return out;
}

}  // namespace moir
