#include "util/histogram.hpp"

#include <cstdio>

#include "util/json.hpp"

namespace moir {

void Histogram::merge(const Histogram& other) {
  merge_parts(other.counts_.data(), other.total_, other.n_, other.max_,
              other.n_ == 0 ? ~std::uint64_t{0} : other.min_);
}

void Histogram::merge_parts(const std::uint64_t* counts, std::uint64_t total,
                            std::uint64_t n, std::uint64_t max,
                            std::uint64_t min) {
  for (unsigned b = 0; b <= kBuckets; ++b) counts_[b] += counts[b];
  total_ += total;
  n_ += n;
  if (n > 0) {
    if (max > max_) max_ = max;
    if (min < min_) min_ = min;
  }
}

std::uint64_t Histogram::quantile(double q) const {
  if (n_ == 0) return 0;
  if (!(q >= 0.0)) q = 0.0;  // also catches NaN
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n_));
  std::uint64_t seen = 0;
  for (unsigned b = 0; b <= kBuckets; ++b) {
    seen += counts_[b];
    if (seen > target) {
      // A bucket's range can extend past the observed maximum — always
      // true for the overflow bucket, whose nominal upper bound is ~0 —
      // so clamp to max() to keep quantiles monotone and attainable.
      return bucket_upper(b) < max_ ? bucket_upper(b) : max_;
    }
  }
  return max_;
}

double Histogram::percentile(double q) const {
  if (n_ == 0) return 0.0;
  if (!(q >= 0.0)) q = 0.0;  // also catches NaN
  // The top rank is the recorded maximum exactly; interpolating inside the
  // final non-empty bucket would report its lower edge instead.
  if (q >= 1.0) return static_cast<double>(max_);
  const double target = q * static_cast<double>(n_ - 1);
  std::uint64_t seen = 0;
  for (unsigned b = 0; b <= kBuckets; ++b) {
    const std::uint64_t c = counts_[b];
    if (c == 0) continue;
    if (target < static_cast<double>(seen + c)) {
      // Bucket b spans (bucket_upper(b-1), bucket_upper(b)]; clamp both
      // edges to the observed range so single-bucket histograms (and the
      // overflow bucket, whose nominal bound is ~0) report real values.
      double lo = b == 0 ? 0.0 : static_cast<double>(bucket_upper(b - 1)) + 1;
      double hi = static_cast<double>(
          bucket_upper(b) < max_ ? bucket_upper(b) : max_);
      const double mn = static_cast<double>(min());
      if (lo < mn) lo = mn;
      if (hi < lo) hi = lo;
      // Rank r may fall between this bucket's last value and the next
      // bucket's first; clamping keeps the result inside this bucket.
      double frac = c == 1 ? 0.0
                           : (target - static_cast<double>(seen)) /
                                 static_cast<double>(c - 1);
      if (frac > 1.0) frac = 1.0;
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return static_cast<double>(max_);
}

std::string Histogram::render(const std::string& unit) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "n=%llu mean=%.1f%s p50<=%llu p99<=%llu max=%llu%s\n",
                static_cast<unsigned long long>(n_), mean(), unit.c_str(),
                static_cast<unsigned long long>(quantile(0.50)),
                static_cast<unsigned long long>(quantile(0.99)),
                static_cast<unsigned long long>(max_), unit.c_str());
  out += line;
  for (unsigned b = 0; b <= kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    const double frac =
        static_cast<double>(counts_[b]) / static_cast<double>(n_);
    const int bars = static_cast<int>(frac * 50.0 + 0.5);
    if (b == kBuckets) {
      // Overflow bucket: values above 2^63-1; "<= 2^64-1" would suggest a
      // power-of-two range this bucket does not have.
      std::snprintf(line, sizeof line, "  > %-12llu %10llu %5.1f%% |%.*s\n",
                    static_cast<unsigned long long>(bucket_upper(63)),
                    static_cast<unsigned long long>(counts_[b]), frac * 100.0,
                    bars,
                    "##################################################");
    } else {
      std::snprintf(line, sizeof line, "  <=%-12llu %10llu %5.1f%% |%.*s\n",
                    static_cast<unsigned long long>(bucket_upper(b)),
                    static_cast<unsigned long long>(counts_[b]), frac * 100.0,
                    bars,
                    "##################################################");
    }
    out += line;
  }
  return out;
}

std::string Histogram::to_json() const {
  JsonWriter w;
  w.begin_object()
      .kv("n", n_)
      .kv("sum", total_)
      .kv("mean", mean())
      .kv("min", min())
      .kv("max", max_)
      .kv("p50", quantile(0.50))
      .kv("p90", quantile(0.90))
      .kv("p99", quantile(0.99))
      .kv("p50i", percentile(0.50))
      .kv("p95", percentile(0.95))
      .kv("p99i", percentile(0.99))
      .kv("p999", percentile(0.999));
  w.key("buckets").begin_array();
  for (unsigned b = 0; b <= kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    w.begin_object();
    if (b == kBuckets) {
      w.key("le").null();
    } else {
      w.kv("le", bucket_upper(b));
    }
    w.kv("count", counts_[b]).end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace moir
