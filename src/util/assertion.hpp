// Assertion helpers for moir-llsc.
//
// MOIR_ASSERT is active in all build types: the correctness of lock-free
// code is exactly the kind of property that only manifests under optimized,
// heavily-tested builds (C++ Core Guidelines CP.101), so we do not strip
// invariant checks in release builds unless MOIR_DISABLE_ASSERTS is defined.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace moir {

[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line, const char* msg) {
  std::fprintf(stderr, "moir: assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace moir

#ifdef MOIR_DISABLE_ASSERTS
#define MOIR_ASSERT(expr) ((void)0)
#define MOIR_ASSERT_MSG(expr, msg) ((void)0)
#else
#define MOIR_ASSERT(expr)                                          \
  ((expr) ? (void)0                                                \
          : ::moir::assertion_failure(#expr, __FILE__, __LINE__, nullptr))
#define MOIR_ASSERT_MSG(expr, msg)                                 \
  ((expr) ? (void)0                                                \
          : ::moir::assertion_failure(#expr, __FILE__, __LINE__, (msg)))
#endif
