// Assertion helpers for moir-llsc.
//
// MOIR_ASSERT is active in all build types: the correctness of lock-free
// code is exactly the kind of property that only manifests under optimized,
// heavily-tested builds (C++ Core Guidelines CP.101), so we do not strip
// invariant checks in release builds unless MOIR_DISABLE_ASSERTS is defined.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace moir {

// Called (if installed) after the failure message is printed and before
// abort(). The stats layer installs a hook that dumps its event-trace ring
// buffers, so a failed invariant comes with the last K events that led to
// it. The hook must be async-signal-tolerant in spirit: no locks it could
// already hold, no allocation it cannot afford to leak — the process is
// dying anyway.
using AssertionHook = void (*)();

inline std::atomic<AssertionHook>& assertion_hook() {
  static std::atomic<AssertionHook> hook{nullptr};
  return hook;
}

[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line, const char* msg) {
  std::fprintf(stderr, "moir: assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg == nullptr ? "" : msg);
  if (AssertionHook hook = assertion_hook().load(std::memory_order_acquire)) {
    hook();
  }
  std::abort();
}

}  // namespace moir

#ifdef MOIR_DISABLE_ASSERTS
#define MOIR_ASSERT(expr) ((void)0)
#define MOIR_ASSERT_MSG(expr, msg) ((void)0)
#else
#define MOIR_ASSERT(expr)                                          \
  ((expr) ? (void)0                                                \
          : ::moir::assertion_failure(#expr, __FILE__, __LINE__, nullptr))
#define MOIR_ASSERT_MSG(expr, msg)                                 \
  ((expr) ? (void)0                                                \
          : ::moir::assertion_failure(#expr, __FILE__, __LINE__, (msg)))
#endif
