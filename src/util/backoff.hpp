// Bounded exponential backoff for optimistic retry loops.
//
// Every lock-free loop in this repo retries on contention: the Figure 3/5
// constructions retry spurious RSC failures, the MCAS/STM layer retries
// aborted transactions and re-reads helped cells, and the service's workers
// and waiting clients spin on queues and tickets. Retrying immediately is
// correct but pays for contention twice — the loser's retry lands back on
// the same cache line the winner is still writing. SpinWait separates the
// two regimes:
//
//  * Early rounds spin with a pipeline relax hint, and each pause() doubles
//    the spin count (1, 2, 4, ... up to 2^(kSpinRounds-1)). Exponential
//    growth is the classic contention-shedding shape: concurrent losers
//    desynchronize instead of reconverging on the line every iteration.
//  * Past the cap, each pause() yields the rest of the quantum. On
//    oversubscribed hosts (this repo's single-core CI box) the yield path
//    is what keeps a waiting thread from starving the peer it waits on.
//
// The bound matters for the nonblocking-progress story: backoff only delays
// a retry, it never blocks on another thread's action, so lock freedom is
// untouched — and under the ControlledScheduler the spin rounds execute no
// yield points, so exploration trees are unchanged (retry counts inside
// model-checked trials never reach the yield regime).
//
// reset() after a success restores full responsiveness for the next
// operation; retries remain observable through the existing rsc_retry /
// stm_abort / txn_help counters.
#pragma once

#include <thread>

namespace moir {

class SpinWait {
 public:
  // 1+2+...+2^(kSpinRounds-1) = 127 relax hints before the first yield —
  // comparable total on-CPU wait to the previous fixed 64-spin policy, but
  // front-loaded so uncontended retries stay fast.
  static constexpr unsigned kSpinRounds = 7;

  void pause() {
    if (round_ < kSpinRounds) {
      const unsigned spins = 1u << round_;
      for (unsigned i = 0; i < spins; ++i) relax();
      ++round_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { round_ = 0; }

  // Backoff rounds taken since the last reset (saturates at kSpinRounds
  // once in the yield regime).
  unsigned rounds() const { return round_; }

  static void relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

 private:
  unsigned round_ = 0;
};

}  // namespace moir
