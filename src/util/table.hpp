// ASCII table writer used by the benchmark harness to print paper-style
// result tables, with an optional CSV sidecar for plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace moir {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names);

  // Row cells are preformatted strings; convenience add() overloads format
  // common cell types.
  Table& row(std::vector<std::string> cells);

  // Render the table with aligned columns.
  std::string render() const;

  // Render as CSV (header + rows), for machine-readable output.
  std::string csv() const;

  // Print render() to stdout.
  void print() const;

  // Structured access, for exporters that re-encode the table (JSON).
  const std::string& title() const { return title_; }
  const std::vector<std::string>& column_names() const { return columns_; }
  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);
  static std::string num(int v) { return num(static_cast<std::int64_t>(v)); }
  static std::string num(unsigned v) {
    return num(static_cast<std::uint64_t>(v));
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace moir
