// Log-bucketed histogram for latencies and retry counts.
//
// Buckets are power-of-two ranges, so recording is branch-light and the
// histogram never allocates after construction — safe to use from
// measurement loops without perturbing them. Bucket b holds values in
// (2^(b-1)-1, 2^b-1]; the final bucket (index kBuckets) is the overflow
// bucket for values above 2^63-1, whose range has no finite power-of-two
// upper bound.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace moir {

class Histogram {
 public:
  static constexpr unsigned kBuckets = 64;

  Histogram() = default;

  void record(std::uint64_t value) {
    ++counts_[bucket_of(value)];
    total_ += value;
    ++n_;
    if (value > max_) max_ = value;
    if (value < min_) min_ = value;
  }

  // Merge another histogram (e.g. per-thread ones) into this one.
  void merge(const Histogram& other);

  // Merge raw parts, for producers that keep bucket arrays in their own
  // storage (the stats shards store atomics and cannot hand us a
  // Histogram). `counts` must have kBuckets+1 entries. `min` uses the same
  // convention as min(): meaningful only when n > 0.
  void merge_parts(const std::uint64_t* counts, std::uint64_t total,
                   std::uint64_t n, std::uint64_t max, std::uint64_t min);

  std::uint64_t count() const { return n_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t min() const { return n_ == 0 ? 0 : min_; }
  std::uint64_t sum() const { return total_; }
  double mean() const {
    return n_ == 0 ? 0.0 : static_cast<double>(total_) / static_cast<double>(n_);
  }

  // Approximate quantile (upper bound of the bucket containing it, clamped
  // to the observed max). Returns 0 for an empty histogram.
  std::uint64_t quantile(double q) const;

  // Interpolated percentile: locates the bucket holding rank q*(n-1) and
  // interpolates linearly inside it (values assumed uniform within a
  // bucket), clamped to [min(), max()]. Unlike quantile() this is not
  // biased to bucket upper bounds, so p50/p99 of a tight distribution land
  // near the true value instead of at the next power of two. Returns 0.0
  // for an empty histogram.
  double percentile(double q) const;

  // Multi-line human-readable rendering: one row per non-empty bucket.
  std::string render(const std::string& unit = "") const;

  // Compact JSON object: summary stats plus non-empty buckets. The
  // overflow bucket is emitted with "le": null since its range has no
  // finite upper bound representable here.
  std::string to_json() const;

  std::uint64_t bucket_count(unsigned b) const { return counts_[b]; }

  static unsigned bucket_of(std::uint64_t value) {
    return value == 0 ? 0 : 64 - static_cast<unsigned>(__builtin_clzll(value));
  }

  // Inclusive upper bound of values mapped to bucket b. The overflow
  // bucket reports ~0 (the largest representable value), which is also the
  // largest value it can actually contain.
  static std::uint64_t bucket_upper(unsigned b) {
    return b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets + 1> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t n_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
};

}  // namespace moir
