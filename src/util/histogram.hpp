// Log-bucketed histogram for latencies and retry counts.
//
// Buckets are power-of-two ranges, so recording is branch-light and the
// histogram never allocates after construction — safe to use from
// measurement loops without perturbing them.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace moir {

class Histogram {
 public:
  static constexpr unsigned kBuckets = 64;

  Histogram() = default;

  void record(std::uint64_t value) {
    ++counts_[bucket_of(value)];
    total_ += value;
    ++n_;
    if (value > max_) max_ = value;
  }

  // Merge another histogram (e.g. per-thread ones) into this one.
  void merge(const Histogram& other);

  std::uint64_t count() const { return n_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return n_ == 0 ? 0.0 : static_cast<double>(total_) / static_cast<double>(n_);
  }

  // Approximate quantile (upper bound of the bucket containing it).
  std::uint64_t quantile(double q) const;

  // Multi-line human-readable rendering: one row per non-empty bucket.
  std::string render(const std::string& unit = "") const;

  std::uint64_t bucket_count(unsigned b) const { return counts_[b]; }

  static unsigned bucket_of(std::uint64_t value) {
    return value == 0 ? 0 : 64 - static_cast<unsigned>(__builtin_clzll(value));
  }

  // Inclusive upper bound of values mapped to bucket b.
  static std::uint64_t bucket_upper(unsigned b) {
    return b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets + 1> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t n_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace moir
