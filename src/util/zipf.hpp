// Key-distribution generators for the YCSB-style map workloads.
//
// YCSB's zipfian generator (Gray et al.'s "Quickly generating billion-record
// synthetic databases" rejection-free inverse-CDF approximation) with the
// standard skew theta = 0.99, plus a scrambled variant so the popular keys
// are spread across the keyspace instead of clustered at 0 — without the
// scramble, every hot key would land in the same few map shards and the
// bench would measure shard-0 contention rather than the advertised skew.
//
// Deterministic given (n, theta, rng seed); the O(n) zeta sum is computed
// once at construction, so keep n to bench-sized keyspaces (<= a few
// million).
#pragma once

#include <cmath>
#include <cstdint>

#include "util/assertion.hpp"
#include "util/rng.hpp"

namespace moir {

class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    MOIR_ASSERT(n >= 1);
    for (std::uint64_t i = 1; i <= n; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    zeta2_ = 1.0 + std::pow(0.5, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Rank in [0, n), rank 0 most popular.
  std::uint64_t next(Xoshiro256& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < zeta2_) return 1;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  // Rank hashed into [0, n): the YCSB "scrambled zipfian". Same frequency
  // distribution, popular keys scattered over the keyspace.
  std::uint64_t next_scrambled(Xoshiro256& rng) const {
    return hash_rank(next(rng)) % n_;
  }

  double theta() const { return theta_; }

 private:
  static std::uint64_t hash_rank(std::uint64_t x) {
    // SplitMix64 finalizer (also util/rng.hpp): full avalanche, cheap.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double zeta2_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

// Uniform over [0, n) — the unskewed control the zipfian runs compare to.
class UniformGenerator {
 public:
  explicit UniformGenerator(std::uint64_t n) : n_(n) { MOIR_ASSERT(n >= 1); }
  std::uint64_t next(Xoshiro256& rng) const { return rng.next_below(n_); }

 private:
  std::uint64_t n_;
};

}  // namespace moir
