#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/assertion.hpp"

namespace moir {

void JsonWriter::element() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already handled the separator
  }
  if (depth_.empty()) return;  // top-level value
  if (depth_.back() == 'f') {
    depth_.back() = 'n';
  } else {
    out_ += ',';
  }
}

void JsonWriter::append_escaped(std::string_view s) {
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  element();
  out_ += '{';
  depth_.push_back('f');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MOIR_ASSERT_MSG(!depth_.empty() && !pending_key_,
                  "end_object with no open object or dangling key");
  depth_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element();
  out_ += '[';
  depth_.push_back('f');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MOIR_ASSERT_MSG(!depth_.empty() && !pending_key_,
                  "end_array with no open array or dangling key");
  depth_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  MOIR_ASSERT_MSG(!pending_key_, "two keys in a row");
  element();
  append_escaped(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  element();
  append_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  element();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::null() {
  element();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  element();
  out_ += json;
  return *this;
}

}  // namespace moir
