// Bit-packing helpers used by every tagged-word layout in the library.
#pragma once

#include <cstdint>
#include <limits>

#include "util/assertion.hpp"

namespace moir {

// Mask with the low `bits` bits set. `bits` may be 0..64.
constexpr std::uint64_t low_mask(unsigned bits) {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

// Extract `bits` bits starting at `shift` from `word`.
constexpr std::uint64_t extract_bits(std::uint64_t word, unsigned shift,
                                     unsigned bits) {
  return (word >> shift) & low_mask(bits);
}

// Deposit the low `bits` bits of `field` at `shift` in `word`.
constexpr std::uint64_t deposit_bits(std::uint64_t word, unsigned shift,
                                     unsigned bits, std::uint64_t field) {
  const std::uint64_t m = low_mask(bits) << shift;
  return (word & ~m) | ((field << shift) & m);
}

// Addition modulo 2^bits (the paper's oplus on a field of width `bits`).
constexpr std::uint64_t add_mod_pow2(std::uint64_t a, std::uint64_t b,
                                     unsigned bits) {
  return (a + b) & low_mask(bits);
}

// Subtraction modulo 2^bits (the paper's ominus).
constexpr std::uint64_t sub_mod_pow2(std::uint64_t a, std::uint64_t b,
                                     unsigned bits) {
  return (a - b) & low_mask(bits);
}

// Addition modulo an arbitrary (inclusive) bound: result in [0, bound].
// Figure 7 uses tags in 0..2Nk and counters in 0..Nk, neither a power of two.
constexpr std::uint64_t add_mod_range(std::uint64_t a, std::uint64_t b,
                                      std::uint64_t bound_inclusive) {
  const std::uint64_t m = bound_inclusive + 1;
  return (a + b) % m;
}

// Number of bits needed to represent values 0..max_value.
constexpr unsigned bits_for(std::uint64_t max_value) {
  unsigned b = 0;
  while (max_value != 0) {
    ++b;
    max_value >>= 1;
  }
  return b == 0 ? 1 : b;
}

}  // namespace moir
