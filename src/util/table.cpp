#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace moir {

Table& Table::columns(std::vector<std::string> names) {
  columns_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> width(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  sep += "\n";

  std::string out = "\n== " + title_ + " ==\n" + sep + render_row(columns_) + sep;
  for (const auto& r : rows_) out += render_row(r);
  out += sep;
  return out;
}

std::string Table::csv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) line += ",";
      line += cells[c];
    }
    return line + "\n";
  };
  std::string out = join(columns_);
  for (const auto& r : rows_) out += join(r);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace moir
