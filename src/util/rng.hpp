// Small, fast, deterministic PRNGs.
//
// Tests and fault injection need per-thread deterministic randomness that is
// cheap enough to call on the hot path of an emulated RSC. std::mt19937 is
// too heavy to construct per-thread on the fly; xoshiro256** seeded by
// SplitMix64 is the standard choice.
#pragma once

#include <cstdint>

namespace moir {

// SplitMix64: used to expand a single seed into stream state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** by Blackman & Vigna.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). Uses the widening-multiply trick (Lemire).
  constexpr std::uint64_t next_below(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  // True with probability `num`/`den`.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return next_below(den) < num;
  }

  // Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace moir
