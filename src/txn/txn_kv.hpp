// Multi-key atomic transactions over the sharded map, built from the
// paper's multi-word primitives (Section 5 made end-to-end).
//
// TxnKv composes ShardedHashMap (PR 3) with Mcas/Stm (the ST/Barnes STM
// over Figure 4 LL/VL/SC) into a transaction manager for atomic
//
//   * multi_get  — consistent snapshot read of k keys,
//   * multi_put  — atomic multi-key write,
//   * multi_cas  — k-key compare-and-swap (the RMW building block),
//
// plus the single-key verbs with map semantics, so single- and multi-key
// traffic interleave linearizably on one store.
//
// Design: per-key value-cell registration. The map supplies a stable
// HANDLE per key (find_or_insert_handle: the node's global index, minted
// under the reclaimer bracket); the authoritative value of a key lives
// NOT in the map node but in the Mcas cell at that handle — one STM cell
// per possible node, allocated up front (handle_space() cells). A
// multi-key write resolves its keys to handles, sorts the cell addresses
// ascending, and runs one MCAS/MSET over them; the STM acquires cells in
// that sorted order with helping, so cross-shard transactions cannot
// livelock each other and the construction stays lock-free (every abort
// is caused by another transaction's committed step).
//
// Cell encoding ("wire form"): 0 = key absent, v+1 = key present with
// value v. Three consequences:
//   * erase is a WRITE (cell := 0), not an unlink — nodes are never
//     removed, so handles are stable and node presence is monotonic
//     (insert-only discipline; do not call the map's erase() directly);
//   * absence is lockable: a conditional insert is an mcas expecting 0,
//     registered on the key's (pre-created) cell — exactly the per-key
//     registration the descriptor needs to make "key must stay absent"
//     part of the atomic comparison;
//   * values are bounded by kMaxValue = Stm::kMaxValue - 1 (the +1 must
//     still fit the 31-bit cell payload).
//
// multi_get is a DOUBLE-COLLECT over the substrate's tags (see
// docs/ALGORITHMS.md "tags as version counters"): peek every cell's
// {value, tag}, then re-resolve and re-peek; if every handle, tag, and
// lock state is unchanged, the first collect was an atomic snapshot —
// linearized anywhere between the collects. Locked cells are helped to
// completion (txn_help), changed tags retry (txn_revalidate), so the read
// path writes nothing and is obstruction-free, with every retry caused by
// a concurrent committed write.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/llsc_traits.hpp"
#include "map/sharded_map.hpp"
#include "nonblocking/mcas.hpp"
#include "platform/yield_point.hpp"
#include "reclaim/reclaimer.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"
#include "util/backoff.hpp"

namespace moir::txn {

enum class TxnStatus : std::uint8_t {
  kOk,       // applied (insert: inserted; upsert: inserted; cas: matched)
  kMiss,     // comparison failed / key already present / updated in place
  kNoSpace,  // a key's shard node pool is exhausted; nothing was written
};

template <SmallLlscSubstrate S, reclaim::Reclaimer R>
class TxnKv {
 public:
  using Map = ShardedHashMap<S, R>;

  static constexpr unsigned kMaxTxnKeys = Mcas::kMaxWords;
  // Service values leave room for the +1 of the wire form.
  static constexpr std::uint64_t kMaxValue = Mcas::kMaxValue - 1;
  static constexpr std::uint64_t kAbsent = 0;  // wire form of "no value"

  static constexpr std::uint64_t wire(std::uint64_t value) {
    return value + 1;
  }

  struct ThreadCtx {
    typename Map::ThreadCtx map;
    Mcas::ThreadCtx mcas;
  };

  // `n_processes` bounds the LIFETIME count of ThreadCtxs (STM pids are
  // leased per ctx and never returned). One cell per possible map node.
  TxnKv(Map& map, unsigned n_processes)
      : map_(map), mcas_(n_processes, map.handle_space()) {}

  TxnKv(const TxnKv&) = delete;
  TxnKv& operator=(const TxnKv&) = delete;

  ThreadCtx make_ctx() {
    return ThreadCtx{map_.make_ctx(), mcas_.make_ctx()};
  }

  Map& map() { return map_; }

  // ----- single-key verbs (map semantics) ----------------------------------

  std::optional<std::uint64_t> get(ThreadCtx& ctx, std::uint64_t key) {
    const auto h = map_.locate_handle(ctx.map, key);
    if (!h) return std::nullopt;
    const std::uint64_t c = mcas_.read(ctx.mcas, *h);  // helps lockers
    if (c == kAbsent) return std::nullopt;
    return c - 1;
  }

  // kOk = inserted, kMiss = key already present (untouched), kNoSpace.
  TxnStatus insert(ThreadCtx& ctx, std::uint64_t key, std::uint64_t value) {
    MOIR_ASSERT(value <= kMaxValue);
    const auto h = map_.find_or_insert_handle(ctx.map, key, value);
    if (!h) return TxnStatus::kNoSpace;
    const std::uint32_t addr[] = {*h};
    const std::uint64_t exp[] = {kAbsent};
    const std::uint64_t des[] = {wire(value)};
    return mcas_.mcas(ctx.mcas, addr, exp, des) ? TxnStatus::kOk
                                                : TxnStatus::kMiss;
  }

  // kOk = inserted, kMiss = updated in place, kNoSpace.
  TxnStatus upsert(ThreadCtx& ctx, std::uint64_t key, std::uint64_t value) {
    MOIR_ASSERT(value <= kMaxValue);
    const auto h = map_.find_or_insert_handle(ctx.map, key, value);
    if (!h) return TxnStatus::kNoSpace;
    const std::uint32_t addr[] = {*h};
    const std::uint64_t des[] = {wire(value)};
    std::uint64_t old[1];
    mcas_.mset(ctx.mcas, addr, des, old);
    return old[0] == kAbsent ? TxnStatus::kOk : TxnStatus::kMiss;
  }

  // true = was present (now absent). The node stays; only the cell clears.
  bool erase(ThreadCtx& ctx, std::uint64_t key) {
    const auto h = map_.locate_handle(ctx.map, key);
    if (!h) return false;
    const std::uint32_t addr[] = {*h};
    const std::uint64_t des[] = {kAbsent};
    std::uint64_t old[1];
    mcas_.mset(ctx.mcas, addr, des, old);
    return old[0] != kAbsent;
  }

  // ----- multi-key transactions --------------------------------------------
  // Keys must be distinct; out/expected/desired/witness are parallel to
  // `keys` in USER order (sorting happens internally). All cell-valued
  // spans use the wire form: 0 = absent, v+1 = value v.

  // Consistent snapshot read. out[i] = wire value of keys[i] at one
  // instant between invocation and response. Always succeeds (retries
  // internally; obstruction-free, every retry caused by a committed
  // concurrent write).
  void multi_get(ThreadCtx& ctx, std::span<const std::uint64_t> keys,
                 std::span<std::uint64_t> out) {
    const unsigned n = static_cast<unsigned>(keys.size());
    MOIR_ASSERT(n >= 1 && n <= kMaxTxnKeys && out.size() == n);
    stats::count(stats::Id::kTxnStart, 1, this);
    stats::record(stats::HistId::kTxnKeys, n);

    // Handles resolved in the first collect; kNoHandle = key had no node.
    constexpr std::uint32_t kNoHandle = ~std::uint32_t{0};
    std::uint32_t h1[kMaxTxnKeys];
    std::uint64_t val[kMaxTxnKeys];
    std::uint64_t tag[kMaxTxnKeys];
    SpinWait backoff;
    for (;;) {
      bool retry = false;
      // Collect 1: resolve handles, peek {value, tag}, help any locker.
      for (unsigned i = 0; i < n && !retry; ++i) {
        const auto h = map_.locate_handle(ctx.map, keys[i]);
        h1[i] = h ? *h : kNoHandle;
        if (!h) continue;  // monotonic: no node now => none earlier either
        const auto v = mcas_.peek(*h);
        if (v.locked) {
          stats::count(stats::Id::kTxnHelp, 1, this);
          mcas_.help_locked(v);
          retry = true;
          break;
        }
        val[i] = v.value;
        tag[i] = v.tag;
      }
      // Collect 2: same handles, same tags, still unlocked => collect 1
      // was an atomic snapshot.
      for (unsigned i = 0; i < n && !retry; ++i) {
        const auto h = map_.locate_handle(ctx.map, keys[i]);
        if ((h ? *h : kNoHandle) != h1[i]) {
          retry = true;
          break;
        }
        if (!h) continue;
        const auto v = mcas_.peek(*h);
        if (v.locked) {
          stats::count(stats::Id::kTxnHelp, 1, this);
          mcas_.help_locked(v);
          retry = true;
          break;
        }
        if (v.tag != tag[i]) {
          retry = true;
          break;
        }
      }
      if (!retry) break;
      stats::count(stats::Id::kTxnRevalidate, 1, this);
      MOIR_YIELD_POINT();
      // Each retry means a concurrent commit or an in-flight lock we just
      // helped (txn_help): back off so the double-collect does not chase a
      // hot writer line-for-line.
      backoff.pause();
    }
    for (unsigned i = 0; i < n; ++i) {
      out[i] = h1[i] == kNoHandle ? kAbsent : val[i];
    }
    stats::count(stats::Id::kTxnCommit, 1, this);
  }

  // Atomic multi-key write of plain values (all keys present afterwards).
  // kNoSpace: some key's node could not be created; nothing was written.
  TxnStatus multi_put(ThreadCtx& ctx, std::span<const std::uint64_t> keys,
                      std::span<const std::uint64_t> values) {
    const unsigned n = static_cast<unsigned>(keys.size());
    MOIR_ASSERT(n >= 1 && n <= kMaxTxnKeys && values.size() == n);
    stats::count(stats::Id::kTxnStart, 1, this);
    stats::record(stats::HistId::kTxnKeys, n);

    CellSet cs;
    if (!resolve_sorted(ctx, keys, cs)) return TxnStatus::kNoSpace;
    std::uint64_t des[kMaxTxnKeys];
    for (unsigned j = 0; j < n; ++j) {
      MOIR_ASSERT(values[cs.perm[j]] <= kMaxValue);
      des[j] = wire(values[cs.perm[j]]);
    }
    mcas_.mset(ctx.mcas, std::span(cs.cells, n), std::span(des, n));
    stats::count(stats::Id::kTxnCommit, 1, this);
    return TxnStatus::kOk;
  }

  // k-key CAS in wire form: atomically, iff every key's cell holds
  // expected[i] (0 = "must be absent"), write desired[i] (0 = erase).
  // `witness` (optional) receives the consistent snapshot the committed
  // transaction read — on kMiss, the values that refuted the comparison.
  // Absent keys get their node (and cell) created first, so absence is
  // registered and locked like any other expectation.
  TxnStatus multi_cas(ThreadCtx& ctx, std::span<const std::uint64_t> keys,
                      std::span<const std::uint64_t> expected,
                      std::span<const std::uint64_t> desired,
                      std::span<std::uint64_t> witness = {}) {
    const unsigned n = static_cast<unsigned>(keys.size());
    MOIR_ASSERT(n >= 1 && n <= kMaxTxnKeys);
    MOIR_ASSERT(expected.size() == n && desired.size() == n);
    MOIR_ASSERT(witness.empty() || witness.size() == n);
    stats::count(stats::Id::kTxnStart, 1, this);
    stats::record(stats::HistId::kTxnKeys, n);

    CellSet cs;
    if (!resolve_sorted(ctx, keys, cs)) return TxnStatus::kNoSpace;
    std::uint64_t exp[kMaxTxnKeys];
    std::uint64_t des[kMaxTxnKeys];
    for (unsigned j = 0; j < n; ++j) {
      MOIR_ASSERT(expected[cs.perm[j]] <= Mcas::kMaxValue &&
                  desired[cs.perm[j]] <= Mcas::kMaxValue);
      exp[j] = expected[cs.perm[j]];
      des[j] = desired[cs.perm[j]];
    }
    std::uint64_t wit[kMaxTxnKeys];
    const bool ok = mcas_.mcas(ctx.mcas, std::span(cs.cells, n),
                               std::span(exp, n), std::span(des, n),
                               std::span(wit, n));
    if (!witness.empty()) {
      for (unsigned j = 0; j < n; ++j) witness[cs.perm[j]] = wit[j];
    }
    stats::count(ok ? stats::Id::kTxnCommit : stats::Id::kTxnAbort, 1, this);
    return ok ? TxnStatus::kOk : TxnStatus::kMiss;
  }

  Stm::Stats stm_stats() const { return mcas_.stats(); }

 private:
  // A write set: cell addresses sorted ascending (the STM's acquisition
  // order) plus the permutation back to user order (perm[j] = user index
  // of sorted position j).
  struct CellSet {
    std::uint32_t cells[kMaxTxnKeys];
    unsigned perm[kMaxTxnKeys];
  };

  // Resolve every key to its cell (creating absent keys' nodes) and sort.
  // Distinct keys have distinct nodes, hence distinct cells; duplicate
  // keys in one transaction are a caller bug the sort assertion catches.
  bool resolve_sorted(ThreadCtx& ctx, std::span<const std::uint64_t> keys,
                      CellSet& cs) {
    const unsigned n = static_cast<unsigned>(keys.size());
    for (unsigned i = 0; i < n; ++i) {
      const auto h = map_.find_or_insert_handle(ctx.map, keys[i], 0);
      if (!h) return false;
      // Insertion sort by cell address (n <= 8).
      unsigned j = i;
      while (j > 0 && cs.cells[j - 1] > *h) {
        cs.cells[j] = cs.cells[j - 1];
        cs.perm[j] = cs.perm[j - 1];
        --j;
      }
      cs.cells[j] = *h;
      cs.perm[j] = i;
    }
    for (unsigned j = 0; j + 1 < n; ++j) {
      MOIR_ASSERT_MSG(cs.cells[j] < cs.cells[j + 1],
                      "transaction keys must be distinct");
    }
    return true;
  }

  Map& map_;
  Mcas mcas_;
};

}  // namespace moir::txn
