#!/usr/bin/env python3
"""CI validator for the bench harness's JSON export (ctest label bench-smoke).

Runs one bench binary twice in smoke mode:
  1. with --json          -> the report must be the ONLY stdout content
  2. with MOIR_BENCH_JSON -> human tables on stdout, the report in the file
and checks both documents against the moir-bench-v1 schema: identification,
at least one run with throughput numbers, a latency histogram per run_ops
run, and the full stats-counter catalogue (sc_fail, help_rounds,
tag_recycle, ... — zeros allowed, missing keys not).

Usage: check_bench_json.py <bench-binary> [minimum-run-count]
"""
import json
import os
import re
import subprocess
import sys
import tempfile

REQUIRED_TOP = [
    "schema", "bench", "platform", "stats_compiled_in", "runs", "tables",
    "metrics", "counters", "histograms",
]
# The acceptance counters from the issue plus the rest of the catalogue.
REQUIRED_COUNTERS = [
    "sc_success", "sc_fail", "cas_success", "cas_fail", "rsc_retry",
    "rsc_spurious", "rsc_conflict", "tag_alloc", "tag_recycle",
    "tag_exhaustion", "help_rounds", "word_copies", "stm_commit",
    "stm_abort", "stm_help", "epoch_advance", "hp_scan", "node_retire",
    "node_free", "alloc_exhaustion", "svc_enqueue", "svc_batch", "svc_shed",
    "svc_drain", "txn_start", "txn_commit", "txn_abort", "txn_help",
    "txn_revalidate", "bw_announce", "bw_help", "bw_alloc_reuse",
    "dur_flush", "dur_fence", "dur_recover", "reg_join", "reg_leave",
    "feed_publish", "feed_deliver", "feed_overrun", "feed_resync",
]
# The complete feed counter family. Like substrates, downstream tooling
# keys dashboards on these names, so a bench exporting a feed_* counter
# outside the catalogue (rename, typo) is exit 2, not a soft pass.
KNOWN_FEED_COUNTERS = {
    "feed_publish", "feed_deliver", "feed_overrun", "feed_resync",
}
# Substrate families run names may reference. Downstream tooling keys result
# rows on these tokens, so a bench quietly inventing a new one (or a typo
# like "figb") must be a hard error — exit 2, distinct from schema FAILs.
KNOWN_SUBSTRATES = {"fig3", "fig4", "fig5", "fig6", "fig7", "figbw", "figdur"}
SUBSTRATE_RE = re.compile(r"(?<![a-z0-9])fig[a-z0-9]+")
REQUIRED_RUN = ["name", "threads", "ops", "secs", "ns_per_op", "mops",
                "latency_ns", "counters"]
# Interpolated percentiles every latency histogram must carry (quantile
# fields p50/p90/p99 predate these and stay).
REQUIRED_PERCENTILES = ["p50i", "p95", "p99i", "p999"]
# Histogram catalogue entries every report must include (zeros allowed).
REQUIRED_HISTOGRAMS = ["batch_size", "svc_latency", "txn_keys"]


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fail_unknown_substrate(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(2)


def check_substrates(doc, source):
    for run in doc["runs"]:
        for token in SUBSTRATE_RE.findall(run.get("name", "")):
            if token not in KNOWN_SUBSTRATES:
                fail_unknown_substrate(
                    f"{source}: run '{run['name']}' names unknown substrate "
                    f"'{token}' (known: {', '.join(sorted(KNOWN_SUBSTRATES))})")


def check_feed_tokens(doc, source):
    counter_maps = [(f"run '{r.get('name')}'", r.get("counters", {}))
                    for r in doc["runs"]]
    counter_maps.append(("global counters", doc["counters"]))
    for where, counters in counter_maps:
        for key in counters:
            if key.startswith("feed_") and key not in KNOWN_FEED_COUNTERS:
                fail_unknown_substrate(
                    f"{source}: {where} exports unknown feed counter "
                    f"'{key}' (known: {', '.join(sorted(KNOWN_FEED_COUNTERS))})")


def check_feed_coherence(doc, source):
    """E17 (bench_feed) exports feed_version_violations: delivered records
    whose per-key version went backwards. Any nonzero value means the
    broadcast path delivered torn/stale data — hard FAIL, not a perf note.
    """
    violations = doc["metrics"].get("feed_version_violations")
    if violations is not None and violations != 0:
        fail(f"{source}: feed_version_violations = {violations} "
             f"(delivered versions must be monotone per key)")


def check_doc(doc, source, min_runs):
    for key in REQUIRED_TOP:
        if key not in doc:
            fail(f"{source}: missing top-level key '{key}'")
    if doc["schema"] != "moir-bench-v1":
        fail(f"{source}: unexpected schema '{doc['schema']}'")
    runs = doc["runs"]
    if len(runs) < min_runs:
        fail(f"{source}: expected >= {min_runs} runs, got {len(runs)}")
    for run in runs:
        for key in REQUIRED_RUN:
            if key not in run:
                fail(f"{source}: run '{run.get('name')}' missing '{key}'")
        if run["ops"] <= 0 or run["secs"] < 0:
            fail(f"{source}: run '{run['name']}' has bogus throughput")
        for counter in REQUIRED_COUNTERS:
            if counter not in run["counters"]:
                fail(f"{source}: run '{run['name']}' missing counter "
                     f"'{counter}'")
        for pct in REQUIRED_PERCENTILES:
            if pct not in run["latency_ns"]:
                fail(f"{source}: run '{run['name']}' latency_ns missing "
                     f"'{pct}'")
    for counter in REQUIRED_COUNTERS:
        if counter not in doc["counters"]:
            fail(f"{source}: global counters missing '{counter}'")
    for hist in REQUIRED_HISTOGRAMS:
        if hist not in doc["histograms"]:
            fail(f"{source}: histograms missing '{hist}'")
    check_substrates(doc, source)
    check_feed_tokens(doc, source)
    check_feed_coherence(doc, source)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_json.py <bench-binary> [min-runs]")
    bench = sys.argv[1]
    min_runs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    env = dict(os.environ, MOIR_BENCH_SMOKE="1")
    env.pop("MOIR_BENCH_JSON", None)

    # Mode 1: --json on stdout, nothing else.
    proc = subprocess.run([bench, "--json"], capture_output=True, text=True,
                          env=env, timeout=300)
    if proc.returncode != 0:
        fail(f"{bench} --json exited {proc.returncode}: {proc.stderr}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"{bench} --json stdout is not pure JSON ({e}); "
             f"first 200 chars: {proc.stdout[:200]!r}")
    check_doc(doc, f"{bench} --json", min_runs)

    # Mode 2: MOIR_BENCH_JSON file alongside human output.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "report.json")
        env2 = dict(env, MOIR_BENCH_JSON=path)
        proc = subprocess.run([bench], capture_output=True, text=True,
                              env=env2, timeout=300)
        if proc.returncode != 0:
            fail(f"{bench} (MOIR_BENCH_JSON) exited {proc.returncode}")
        if not os.path.exists(path):
            fail(f"{bench} did not write MOIR_BENCH_JSON={path}")
        with open(path) as f:
            file_doc = json.load(f)
        check_doc(file_doc, f"{bench} MOIR_BENCH_JSON", min_runs)
        if not proc.stdout.strip():
            fail(f"{bench} MOIR_BENCH_JSON mode suppressed human output")

    print(f"check_bench_json: OK: {os.path.basename(bench)} "
          f"({len(doc['runs'])} runs, stats_compiled_in="
          f"{doc['stats_compiled_in']})")


if __name__ == "__main__":
    main()
